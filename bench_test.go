// Benchmarks: one per table and figure of the paper's evaluation (run
// the figure's full workload at a small scale), plus ablation benches
// for the design choices called out in DESIGN.md and micro-benchmarks of
// the hot paths. Regenerating the paper's actual numbers is
// cmd/experiments' job; these benches track the cost of each experiment
// and the effect of each design knob.
package lshcluster

import (
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"lshcluster/internal/core"
	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/experiments"
	"lshcluster/internal/kmeans"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/minhash"
	"lshcluster/internal/simhash"
)

// benchScale keeps figure benches fast while preserving the comparative
// shape; cmd/experiments defaults to 10× this.
const benchScale = 0.005

func benchFigure(b *testing.B, fig int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		suite := experiments.NewSuite(experiments.Config{
			Scale: benchScale, Seed: 1, Out: io.Discard, Quiet: true, MaxIterations: 10,
		})
		if err := suite.Figure(fig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := TableI(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := TableII(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure2(b *testing.B)  { benchFigure(b, 2) }
func BenchmarkFigure3(b *testing.B)  { benchFigure(b, 3) }
func BenchmarkFigure4(b *testing.B)  { benchFigure(b, 4) }
func BenchmarkFigure5(b *testing.B)  { benchFigure(b, 5) }
func BenchmarkFigure6(b *testing.B)  { benchFigure(b, 6) }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, 7) }
func BenchmarkFigure8(b *testing.B)  { benchFigure(b, 8) }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, 9) }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, 10) }

// ---- shared ablation workload ----

var (
	ablOnce sync.Once
	ablDS   *dataset.Dataset
)

// ablWorkload is a mid-size separable workload in the paper's regime —
// the cluster count dominates the signature length (k=800 ≫ b·r=100),
// which is the premise of the whole technique — while staying small
// enough for sub-second runs.
func ablWorkload(b *testing.B) *dataset.Dataset {
	ablOnce.Do(func() {
		ds, err := datagen.Generate(datagen.Config{
			Items: 2400, Clusters: 800, Attrs: 50, Domain: 40000, Seed: 33,
		})
		if err != nil {
			panic(err)
		}
		ablDS = ds
	})
	return ablDS
}

// runAbl benchmarks a timing-only configuration (SkipCost: the
// objective pass is not part of what the ablation varies).
func runAbl(b *testing.B, opts core.Options, withAccel bool) {
	opts.SkipCost = true
	runAblOpts(b, opts, withAccel)
}

// runAblOpts runs the ablation workload with the options exactly as
// given.
func runAblOpts(b *testing.B, opts core.Options, withAccel bool) {
	ds := ablWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Random seed items, as in the paper's initialisation: several
		// seeds land in the same ground-truth cluster, so the run takes
		// multiple iterations to settle.
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: 800, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		o := opts
		if withAccel {
			accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 5}, 7)
			if err != nil {
				b.Fatal(err)
			}
			o.Accelerator = accel
		}
		o.MaxIterations = 8
		if _, err := core.Run(space, o); err != nil {
			b.Fatal(err)
		}
	}
}

// Headline comparison: the exact baseline vs the accelerated algorithm
// on the same workload (the per-run equivalent of Figure 7).
func BenchmarkRunExactKModes(b *testing.B) { runAbl(b, core.Options{}, false) }
func BenchmarkRunMHKModes(b *testing.B)    { runAbl(b, core.Options{}, true) }

// Ablation: bootstrap strategy (paper full-scan first pass vs seeded
// incremental index).
func BenchmarkAblationBootstrapFullScan(b *testing.B) {
	runAbl(b, core.Options{Bootstrap: core.BootstrapFullScan}, true)
}

func BenchmarkAblationBootstrapSeeded(b *testing.B) {
	runAbl(b, core.Options{Bootstrap: core.BootstrapSeeded}, true)
}

// Ablation: immediate (paper) vs deferred cluster-reference updates.
func BenchmarkAblationUpdateImmediate(b *testing.B) {
	runAbl(b, core.Options{Update: core.UpdateImmediate}, true)
}

func BenchmarkAblationUpdateDeferred(b *testing.B) {
	runAbl(b, core.Options{Update: core.UpdateDeferred}, true)
}

// Ablation: early-abandon distance evaluation on the exact baseline,
// where it matters most (k full-distance evaluations per item).
func BenchmarkAblationEarlyAbandonOff(b *testing.B) {
	runAbl(b, core.Options{}, false)
}

func BenchmarkAblationEarlyAbandonOn(b *testing.B) {
	runAbl(b, core.Options{EarlyAbandon: true}, false)
}

// Ablation: incremental engine (FreqTable moves + dirty-cluster
// refresh + O(1) objective) vs the batch oracle (full
// RecomputeCentroids + full Cost every pass) on the same run. Cost is
// computed per iteration here, unlike the other ablations: the
// objective pass is part of what the engine removes.
func BenchmarkAblationEngineIncremental(b *testing.B) {
	runAblOpts(b, core.Options{}, true)
}

func BenchmarkAblationEngineBatch(b *testing.B) {
	runAblOpts(b, core.Options{DisableIncremental: true}, true)
}

// Ablation: tie-breaking policy.
func BenchmarkAblationTieBreakPreferCurrent(b *testing.B) {
	runAbl(b, core.Options{TieBreak: core.TieBreakPreferCurrent}, true)
}

func BenchmarkAblationTieBreakLowestIndex(b *testing.B) {
	runAbl(b, core.Options{TieBreak: core.TieBreakLowestIndex}, true)
}

// ---- active-set assignment pass ----

// benchActiveFilter times full accelerated runs with and without the
// active-set filter on the ablation workload, whose random seeding
// yields several passes of sparse-tail iterations — the regime the
// filter targets (late passes re-evaluate only the items whose cluster
// neighbourhood changed). Assignments are bit-identical across the
// pair; only the work differs. The reported active_frac_last metric is
// the final pass's evaluated fraction — the acceptance criterion is
// that it sits at or below 0.10 for the filtered run.
func benchActiveFilter(b *testing.B, disable bool) {
	ds := ablWorkload(b)
	var lastFrac float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: 800, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 5}, 7)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(space, core.Options{
			Accelerator:         accel,
			SkipCost:            true,
			MaxIterations:       12,
			DisableActiveFilter: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Stats.Iterations[len(res.Stats.Iterations)-1]
		lastFrac = float64(last.ActiveItems) / float64(ds.NumItems())
	}
	b.ReportMetric(lastFrac, "active_frac_last")
}

func BenchmarkActiveFilterOff(b *testing.B) { benchActiveFilter(b, true) }
func BenchmarkActiveFilterOn(b *testing.B)  { benchActiveFilter(b, false) }

// benchShortlists measures shortlist construction for every item on
// the frozen index: the per-item Candidates path versus the batched
// band-major CandidatesBlock path the deferred passes use.
func benchShortlists(b *testing.B, block bool) {
	ds := ablWorkload(b)
	const k = 800
	accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 5}, 7)
	if err != nil {
		b.Fatal(err)
	}
	if err := accel.Reset(k); err != nil {
		b.Fatal(err)
	}
	n := ds.NumItems()
	assign := make([]int32, n)
	rng := rand.New(rand.NewSource(4))
	for i := range assign {
		assign[i] = int32(rng.Intn(k))
	}
	for i := 0; i < n; i++ {
		if err := accel.Insert(int32(i)); err != nil {
			b.Fatal(err)
		}
	}
	accel.Freeze()
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	if block {
		bq := accel.NewQuerier().(core.BlockQuerier)
		blk := make([]int32, 0, 64)
		for i := 0; i < b.N; i++ {
			sink = 0
			for lo := 0; lo < n; lo += cap(blk) {
				blk = blk[:0]
				for j := lo; j < n && len(blk) < cap(blk); j++ {
					blk = append(blk, int32(j))
				}
				bq.CandidatesBlock(blk, assign, func(pos int, shortlist []int32) {
					sink += len(shortlist)
				})
			}
		}
	} else {
		q := accel.NewQuerier()
		for i := 0; i < b.N; i++ {
			sink = 0
			for item := 0; item < n; item++ {
				sink += len(q.Candidates(int32(item), assign))
			}
		}
	}
	_ = sink
}

func BenchmarkShortlistPerItem(b *testing.B) { benchShortlists(b, false) }
func BenchmarkShortlistBlock(b *testing.B)   { benchShortlists(b, true) }

// ---- numeric extension ----

func benchNumeric(b *testing.B, params *Params) {
	pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 4000, Clusters: 200, Dim: 16, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]int32, 200)
	for c := range seeds {
		seeds[c] = int32(c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := kmeans.NewSpaceFromSeeds(pts, 16, seeds, kmeans.Config{})
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{MaxIterations: 8, SkipCost: true}
		if params != nil {
			accel, err := simhash.NewAccelerator(space, *params, 9)
			if err != nil {
				b.Fatal(err)
			}
			opts.Accelerator = accel
		}
		if _, err := core.Run(space, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunExactKMeans(b *testing.B) { benchNumeric(b, nil) }
func BenchmarkRunSimHashKMeans(b *testing.B) {
	benchNumeric(b, &Params{Bands: 12, Rows: 12})
}

// ---- incremental hot-path engine ----

var (
	iterOnce sync.Once
	iterDS   *dataset.Dataset
)

// iterWorkload is the paper-regime synthetic categorical workload at
// n=100k used to measure post-bootstrap per-iteration cost. Late
// iterations move only a handful of items, which is exactly the case
// the incremental engine targets.
func iterWorkload(b *testing.B) *dataset.Dataset {
	b.Helper()
	iterOnce.Do(func() {
		ds, err := datagen.Generate(datagen.Config{
			Items: 100_000, Clusters: 1000, Attrs: 24, Domain: 20000, Seed: 17,
		})
		if err != nil {
			panic(err)
		}
		iterDS = ds
	})
	return iterDS
}

// benchIterationUpdate measures one iteration's centroid-update plus
// objective work after a sparse assignment pass (128 moved items out of
// 100k): the incremental engine folds the moves and refreshes dirty
// modes; the batch oracle recomputes every mode and rescans every item.
// The assignment-pass cost itself is identical for both engines and is
// excluded, so the ratio isolates the work this PR removes.
func benchIterationUpdate(b *testing.B, incremental bool) {
	const k, sparseMoves = 1000, 128
	ds := iterWorkload(b)
	n := ds.NumItems()
	space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(rng.Intn(k))
	}
	if incremental {
		space.BeginIncremental(assign, true)
	} else {
		space.RecomputeCentroids(assign)
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for j := 0; j < sparseMoves; j++ {
			item := rng.Intn(n)
			to := int32(rng.Intn(k))
			from := assign[item]
			if to == from {
				continue
			}
			assign[item] = to
			if incremental {
				space.ApplyMove(item, from, to)
			}
		}
		if incremental {
			space.FinishPass(assign)
			sink = space.IncrementalCost(assign)
		} else {
			space.RecomputeCentroids(assign)
			sink = space.Cost(assign)
		}
	}
	_ = sink
}

func BenchmarkIterationUpdate100kBatch(b *testing.B)       { benchIterationUpdate(b, false) }
func BenchmarkIterationUpdate100kIncremental(b *testing.B) { benchIterationUpdate(b, true) }

var (
	signOnce sync.Once
	signDS   *dataset.Dataset
)

// signWorkload is a 100k-item workload with a census-like compact value
// dictionary (the classic K-Modes regime: few hundred distinct values,
// each occurring tens of thousands of times). This is the regime where
// the accelerator enables the hash-column memo; sparse or huge
// dictionaries keep direct hashing (see memoMaxFootprint).
func signWorkload(b *testing.B) *dataset.Dataset {
	b.Helper()
	signOnce.Do(func() {
		ds, err := datagen.Generate(datagen.Config{
			Items: 100_000, Clusters: 1000, Attrs: 24, Domain: 200, Seed: 19,
		})
		if err != nil {
			panic(err)
		}
		signDS = ds
	})
	return signDS
}

// benchBootstrapSigning measures signing every item — the dominant cost
// of index construction — with and without the per-value hash-column
// memo. Each outer iteration uses a fresh memo, so the measured time
// includes computing every distinct value's column once.
func benchBootstrapSigning(b *testing.B, memoized bool) {
	ds := signWorkload(b)
	params := lsh.Params{Bands: 20, Rows: 5}
	scheme := minhash.NewScheme(params.SignatureLen(), 7)
	sig := make([]uint64, params.SignatureLen())
	var set []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var memo *minhash.Memo
		if memoized {
			memo = scheme.NewMemo(int(ds.MaxValue()) + 1)
		}
		for item := 0; item < ds.NumItems(); item++ {
			set = ds.PresentValues(item, set[:0])
			if memoized {
				memo.Sign(set, sig)
			} else {
				scheme.Sign(set, sig)
			}
		}
	}
}

func BenchmarkBootstrapSigningPlain(b *testing.B)    { benchBootstrapSigning(b, false) }
func BenchmarkBootstrapSigningMemoized(b *testing.B) { benchBootstrapSigning(b, true) }

// ---- parallel bootstrap pipeline ----

// benchBootstrapPipeline times the bootstrap phase of a full-scan
// accelerated run on the 100k signing workload — the regime where
// bootstrap dominates end-to-end cost. serial=true runs the per-item
// sign+insert oracle (DisableParallelBootstrap); otherwise the
// sign → build → assign pipeline runs at the given worker count.
// Results are bit-identical across all variants (enforced by the
// equivalence tests); only the bootstrap cost differs, reported as
// bootstrap_ms with its per-phase split.
func benchBootstrapPipeline(b *testing.B, workers int, serial bool) {
	const k = 1000
	ds := signWorkload(b)
	var boot, sign, build, assign time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 5}, 7)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(space, core.Options{
			Accelerator:              accel,
			SkipCost:                 true,
			MaxIterations:            1,
			Workers:                  workers,
			Update:                   core.UpdateDeferred,
			DisableParallelBootstrap: serial,
		})
		if err != nil {
			b.Fatal(err)
		}
		boot += res.Stats.Bootstrap
		sign += res.Stats.BootstrapSign
		build += res.Stats.BootstrapBuild
		assign += res.Stats.BootstrapAssign
	}
	n := float64(b.N)
	b.ReportMetric(float64(boot.Milliseconds())/n, "bootstrap_ms")
	b.ReportMetric(float64(sign.Milliseconds())/n, "sign_ms")
	b.ReportMetric(float64(build.Milliseconds())/n, "build_ms")
	b.ReportMetric(float64(assign.Milliseconds())/n, "assign_ms")
}

func BenchmarkBootstrapSerialOracle(b *testing.B) { benchBootstrapPipeline(b, 1, true) }
func BenchmarkBootstrapPipeline1(b *testing.B)    { benchBootstrapPipeline(b, 1, false) }
func BenchmarkBootstrapPipeline4(b *testing.B)    { benchBootstrapPipeline(b, 4, false) }

// ---- item-sharded index ----

// benchShardedRun is the shard A/B on the 100k workload: a full-scan
// accelerated run at the given shard count, reporting the bootstrap
// build phase (per-shard parallel at S>1), the mean iteration time
// (the batched-query phase the shards serve) and the cross-shard merge
// overhead. S=1 is the unsharded oracle — results are bit-identical
// across shard counts (enforced by the equivalence tests), so the pair
// isolates the cost/benefit of partitioning alone.
func benchShardedRun(b *testing.B, shards int) {
	const k = 1000
	ds := signWorkload(b)
	var boot, build, merge, iter time.Duration
	var iters int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 5}, 7)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(space, core.Options{
			Accelerator:   accel,
			SkipCost:      true,
			MaxIterations: 4,
			Workers:       4,
			Update:        core.UpdateDeferred,
			Shards:        shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		boot += res.Stats.Bootstrap
		build += res.Stats.BootstrapBuild
		merge += res.Stats.CrossShardMerge
		for _, it := range res.Stats.Iterations {
			iter += it.Duration
			iters++
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(boot.Milliseconds())/n, "bootstrap_ms")
	b.ReportMetric(float64(build.Milliseconds())/n, "build_ms")
	b.ReportMetric(float64(merge.Milliseconds())/n, "crossshard_merge_ms")
	if iters > 0 {
		b.ReportMetric(float64(iter.Milliseconds())/float64(iters), "iter_ms")
	}
}

func BenchmarkShardedRun1(b *testing.B) { benchShardedRun(b, 1) }
func BenchmarkShardedRun4(b *testing.B) { benchShardedRun(b, 4) }

// benchForeignSlots is the cross-shard fan-out A/B at S=4 on the 100k
// workload: materialised foreign-slot arrays (direct loads) vs the
// key-probe oracle (DisableForeignSlots). Assignments are bit-identical
// across the pair — only the fan-out mechanism differs — so iter_ms
// isolates the probe tax the arrays remove. foreignslot_kb reports the
// materialised footprint (0 for the probe run), probe_frac the fraction
// of cross-shard resolutions that fell back to key probing.
func benchForeignSlots(b *testing.B, disable bool) {
	const k = 1000
	ds := signWorkload(b)
	var merge, iter time.Duration
	var iters int
	var bytes, probes, direct int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 5}, 7)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(space, core.Options{
			Accelerator:         accel,
			SkipCost:            true,
			MaxIterations:       4,
			Workers:             4,
			Update:              core.UpdateDeferred,
			Shards:              4,
			DisableForeignSlots: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		merge += res.Stats.CrossShardMerge
		for _, it := range res.Stats.Iterations {
			iter += it.Duration
			iters++
		}
		bytes = res.Stats.ForeignSlotBytes
		probes += res.Stats.CrossShardProbes
		direct += res.Stats.CrossShardDirect
	}
	n := float64(b.N)
	b.ReportMetric(float64(merge.Milliseconds())/n, "crossshard_merge_ms")
	if iters > 0 {
		b.ReportMetric(float64(iter.Milliseconds())/float64(iters), "iter_ms")
	}
	b.ReportMetric(float64(bytes)/1024, "foreignslot_kb")
	if total := probes + direct; total > 0 {
		b.ReportMetric(float64(probes)/float64(total), "probe_frac")
	}
}

func BenchmarkAblationForeignSlotsOff(b *testing.B) { benchForeignSlots(b, true) }
func BenchmarkAblationForeignSlotsOn(b *testing.B)  { benchForeignSlots(b, false) }

// ---- locality-preserving item reordering ----

// benchLocality is the reordering A/B on the 100k workload: a
// full-scan accelerated run at the given shard count with the
// locality-reordering stage on (default) or off (the DisableReorder
// original-order oracle). Assignments are bit-identical across the
// pair — the permutation only changes memory layout — so iter_ms
// isolates the cache-residency win. reorder_ms prices the stage
// itself (one permutation pass over the signature arena) and
// shard_local_frac reports, at S>1, the fraction of fan-out
// candidates served by the querying item's own shard — the quantity
// the reordering exists to raise.
func benchLocality(b *testing.B, shards int, disable bool) {
	const k = 1000
	ds := signWorkload(b)
	var reorder, iter time.Duration
	var iters int
	var local, foreign int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 5}, 7)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(space, core.Options{
			Accelerator:    accel,
			SkipCost:       true,
			MaxIterations:  4,
			Workers:        4,
			Update:         core.UpdateDeferred,
			Shards:         shards,
			DisableReorder: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		reorder += res.Stats.ReorderTime
		local += res.Stats.ShardLocalCands
		foreign += res.Stats.ShardForeignCands
		for _, it := range res.Stats.Iterations {
			iter += it.Duration
			iters++
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(reorder.Milliseconds())/n, "reorder_ms")
	if iters > 0 {
		b.ReportMetric(float64(iter.Milliseconds())/float64(iters), "iter_ms")
	}
	if total := local + foreign; total > 0 {
		b.ReportMetric(float64(local)/float64(total), "shard_local_frac")
	}
}

func BenchmarkLocalityReorderOff1(b *testing.B) { benchLocality(b, 1, true) }
func BenchmarkLocalityReorderOn1(b *testing.B)  { benchLocality(b, 1, false) }
func BenchmarkLocalityReorderOff4(b *testing.B) { benchLocality(b, 4, true) }
func BenchmarkLocalityReorderOn4(b *testing.B)  { benchLocality(b, 4, false) }

// benchCandidates measures the recurring per-iteration collision
// lookup over every indexed item, on the map-based builder layout vs
// the frozen CSR layout.
func benchCandidates(b *testing.B, frozen bool) {
	ds := ablWorkload(b)
	ix, err := lsh.NewIndex(lsh.Params{Bands: 20, Rows: 5}, 7, ds.NumItems())
	if err != nil {
		b.Fatal(err)
	}
	var set []uint64
	for item := 0; item < ds.NumItems(); item++ {
		set = ds.PresentValues(item, set[:0])
		if err := ix.Insert(int32(item), set); err != nil {
			b.Fatal(err)
		}
	}
	if frozen {
		ix.Freeze()
	}
	var hits int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits = 0
		for item := 0; item < ds.NumItems(); item++ {
			ix.Candidates(int32(item), func(int32) { hits++ })
		}
	}
	_ = hits
}

func BenchmarkCandidatesMap(b *testing.B)    { benchCandidates(b, false) }
func BenchmarkCandidatesFrozen(b *testing.B) { benchCandidates(b, true) }

// ---- persistent index warm start ----

// benchPersist prices the out-of-core warm start on the 100k workload
// at S=4, MaxIterations=1 — the time to be ready for (and finish) the
// first iteration, which is what the warm start exists to shrink. The
// cold case signs, builds, saves and full-scans into an empty
// directory every round; the warm cases open the saved shards — mmap
// zero-copy by default, heap-deserialising under DisableMmap (the
// portable oracle) — and restore the cached bootstrap assignment.
// bootstrap_ms is the headline; save_ms/load_ms split out the
// persistence layer's own cost.
func benchPersist(b *testing.B, warm, useMmap bool) {
	const k = 1000
	ds := signWorkload(b)
	dir := b.TempDir()
	run := func() *core.Result {
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 5}, 7)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(space, core.Options{
			Accelerator:   accel,
			SkipCost:      true,
			MaxIterations: 1,
			Workers:       4,
			Update:        core.UpdateDeferred,
			Shards:        4,
			IndexDir:      dir,
			DisableMmap:   !useMmap,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	if warm {
		run() // seed the on-disk index outside the timer
	}
	var boot, save, load time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warm {
			b.StopTimer()
			if err := os.RemoveAll(dir); err != nil {
				b.Fatal(err)
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		res := run()
		boot += res.Stats.Bootstrap
		save += res.Stats.IndexSaveTime
		load += res.Stats.IndexLoadTime
		if warm && !res.Stats.WarmStart {
			b.Fatal("expected a warm start")
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(boot.Milliseconds())/n, "bootstrap_ms")
	if !warm {
		b.ReportMetric(float64(save.Milliseconds())/n, "save_ms")
	} else {
		b.ReportMetric(float64(load.Milliseconds())/n, "load_ms")
	}
}

func BenchmarkPersistColdBootstrap(b *testing.B) { benchPersist(b, false, true) }
func BenchmarkPersistWarmMmap(b *testing.B)      { benchPersist(b, true, true) }
func BenchmarkPersistWarmHeap(b *testing.B)      { benchPersist(b, true, false) }
