// Benchmarks: one per table and figure of the paper's evaluation (run
// the figure's full workload at a small scale), plus ablation benches
// for the design choices called out in DESIGN.md and micro-benchmarks of
// the hot paths. Regenerating the paper's actual numbers is
// cmd/experiments' job; these benches track the cost of each experiment
// and the effect of each design knob.
package lshcluster

import (
	"io"
	"sync"
	"testing"

	"lshcluster/internal/core"
	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/experiments"
	"lshcluster/internal/kmeans"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/simhash"
)

// benchScale keeps figure benches fast while preserving the comparative
// shape; cmd/experiments defaults to 10× this.
const benchScale = 0.005

func benchFigure(b *testing.B, fig int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		suite := experiments.NewSuite(experiments.Config{
			Scale: benchScale, Seed: 1, Out: io.Discard, Quiet: true, MaxIterations: 10,
		})
		if err := suite.Figure(fig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := TableI(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := TableII(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure2(b *testing.B)  { benchFigure(b, 2) }
func BenchmarkFigure3(b *testing.B)  { benchFigure(b, 3) }
func BenchmarkFigure4(b *testing.B)  { benchFigure(b, 4) }
func BenchmarkFigure5(b *testing.B)  { benchFigure(b, 5) }
func BenchmarkFigure6(b *testing.B)  { benchFigure(b, 6) }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, 7) }
func BenchmarkFigure8(b *testing.B)  { benchFigure(b, 8) }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, 9) }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, 10) }

// ---- shared ablation workload ----

var (
	ablOnce sync.Once
	ablDS   *dataset.Dataset
)

// ablWorkload is a mid-size separable workload in the paper's regime —
// the cluster count dominates the signature length (k=800 ≫ b·r=100),
// which is the premise of the whole technique — while staying small
// enough for sub-second runs.
func ablWorkload(b *testing.B) *dataset.Dataset {
	ablOnce.Do(func() {
		ds, err := datagen.Generate(datagen.Config{
			Items: 2400, Clusters: 800, Attrs: 50, Domain: 40000, Seed: 33,
		})
		if err != nil {
			panic(err)
		}
		ablDS = ds
	})
	return ablDS
}

func runAbl(b *testing.B, opts core.Options, withAccel bool) {
	ds := ablWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Random seed items, as in the paper's initialisation: several
		// seeds land in the same ground-truth cluster, so the run takes
		// multiple iterations to settle.
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: 800, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		o := opts
		if withAccel {
			accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 5}, 7)
			if err != nil {
				b.Fatal(err)
			}
			o.Accelerator = accel
		}
		o.MaxIterations = 8
		o.SkipCost = true
		if _, err := core.Run(space, o); err != nil {
			b.Fatal(err)
		}
	}
}

// Headline comparison: the exact baseline vs the accelerated algorithm
// on the same workload (the per-run equivalent of Figure 7).
func BenchmarkRunExactKModes(b *testing.B) { runAbl(b, core.Options{}, false) }
func BenchmarkRunMHKModes(b *testing.B)    { runAbl(b, core.Options{}, true) }

// Ablation: bootstrap strategy (paper full-scan first pass vs seeded
// incremental index).
func BenchmarkAblationBootstrapFullScan(b *testing.B) {
	runAbl(b, core.Options{Bootstrap: core.BootstrapFullScan}, true)
}

func BenchmarkAblationBootstrapSeeded(b *testing.B) {
	runAbl(b, core.Options{Bootstrap: core.BootstrapSeeded}, true)
}

// Ablation: immediate (paper) vs deferred cluster-reference updates.
func BenchmarkAblationUpdateImmediate(b *testing.B) {
	runAbl(b, core.Options{Update: core.UpdateImmediate}, true)
}

func BenchmarkAblationUpdateDeferred(b *testing.B) {
	runAbl(b, core.Options{Update: core.UpdateDeferred}, true)
}

// Ablation: early-abandon distance evaluation on the exact baseline,
// where it matters most (k full-distance evaluations per item).
func BenchmarkAblationEarlyAbandonOff(b *testing.B) {
	runAbl(b, core.Options{}, false)
}

func BenchmarkAblationEarlyAbandonOn(b *testing.B) {
	runAbl(b, core.Options{EarlyAbandon: true}, false)
}

// Ablation: tie-breaking policy.
func BenchmarkAblationTieBreakPreferCurrent(b *testing.B) {
	runAbl(b, core.Options{TieBreak: core.TieBreakPreferCurrent}, true)
}

func BenchmarkAblationTieBreakLowestIndex(b *testing.B) {
	runAbl(b, core.Options{TieBreak: core.TieBreakLowestIndex}, true)
}

// ---- numeric extension ----

func benchNumeric(b *testing.B, params *Params) {
	pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 4000, Clusters: 200, Dim: 16, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]int32, 200)
	for c := range seeds {
		seeds[c] = int32(c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := kmeans.NewSpaceFromSeeds(pts, 16, seeds, kmeans.Config{})
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{MaxIterations: 8, SkipCost: true}
		if params != nil {
			accel, err := simhash.NewAccelerator(space, *params, 9)
			if err != nil {
				b.Fatal(err)
			}
			opts.Accelerator = accel
		}
		if _, err := core.Run(space, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunExactKMeans(b *testing.B) { benchNumeric(b, nil) }
func BenchmarkRunSimHashKMeans(b *testing.B) {
	benchNumeric(b, &Params{Bands: 12, Rows: 12})
}
