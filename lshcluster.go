package lshcluster

import (
	"context"
	"fmt"
	"io"
	"time"

	"lshcluster/internal/core"
	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/kmeans"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/metrics"
	"lshcluster/internal/runstats"
	"lshcluster/internal/simhash"
	"lshcluster/internal/stream"
	"lshcluster/internal/textproc"
	"lshcluster/internal/yahoogen"
)

// Re-exported building blocks. The implementation lives under internal/
// (one package per subsystem, see DESIGN.md); these aliases are the
// stable public surface.
type (
	// Dataset is a categorical dataset: n items × m attributes with
	// interned values, optional ground-truth labels and presence flags.
	Dataset = dataset.Dataset
	// Builder assembles a Dataset from raw string rows.
	Builder = dataset.Builder
	// Dict interns (attribute, value) pairs to dense IDs.
	Dict = dataset.Dict
	// Value is an interned categorical value identifier.
	Value = dataset.Value
	// Params is an LSH banding configuration: Bands × Rows hash values.
	Params = lsh.Params
	// TableRow is one line of a Table I/II-style probability grid.
	TableRow = lsh.TableRow
	// Run aggregates the per-iteration statistics of one clustering
	// execution.
	Run = runstats.Run
	// Iteration records one assignment+update pass.
	Iteration = runstats.Iteration
	// Model is a serialisable snapshot of trained K-Modes cluster modes.
	Model = kmodes.Model
	// SyntheticConfig parameterises the datgen-style workload generator.
	SyntheticConfig = datagen.Config
	// CorpusConfig parameterises the Yahoo!-Answers-style corpus
	// generator.
	CorpusConfig = yahoogen.Config
	// Corpus is a generated topic-labelled question collection.
	Corpus = yahoogen.Corpus
	// Scorer computes per-topic TF-IDF scores.
	Scorer = textproc.Scorer
	// VocabConfig controls TF-IDF vocabulary selection.
	VocabConfig = textproc.VocabConfig
	// Vocabulary is an ordered word list backing binary text features.
	Vocabulary = textproc.Vocabulary
	// Document is one tokenised text item with an optional label.
	Document = textproc.Document
)

// InitMethod selects how initial centroids are chosen.
type InitMethod int

const (
	// InitRandom picks k distinct random items (the paper's default).
	InitRandom InitMethod = iota
	// InitHuang uses Huang's frequency-based initialisation [3].
	InitHuang
	// InitCao uses the deterministic density–distance method of Cao,
	// Liang & Bai [22]. O(n²·m) — intended for moderate n.
	InitCao
)

// Config configures a clustering run. The zero value of every field is a
// sensible default; only K is required.
type Config struct {
	// K is the number of clusters.
	K int
	// Init selects the initial-centroid strategy (categorical spaces).
	Init InitMethod
	// LSH enables MinHash/SimHash acceleration with the given banding
	// parameters; nil runs the exact algorithm.
	LSH *Params
	// Seed drives centroid selection and hashing (default 0 is a valid
	// seed).
	Seed int64
	// MaxIterations caps the iteration count (0 = 100).
	MaxIterations int
	// Workers parallelises the assignment step and the bootstrap
	// (signing, index construction and the first assignment); values
	// > 1 imply deferred reference updates.
	Workers int
	// Shards partitions the LSH index into this many item shards:
	// shards build concurrently from disjoint slices of the signing
	// arena and each keeps its own cache-resident hash tables, while
	// queries fan out across shards and merge back into the
	// single-index candidate order — results are bit-identical for
	// every shard count. Values < 2 keep the unsharded index (the
	// oracle). Ignored for exact runs.
	Shards int
	// ForeignSlotBudget caps the memory (bytes) a sharded LSH index may
	// spend on materialised cross-shard fan-out arrays, which replace
	// per-query key-table probes of foreign shards with direct indexed
	// loads. 0 selects the default budget (64 MiB), negative means
	// unlimited; over budget the index transparently keeps probing.
	// Results are bit-identical either way. Ignored with Shards < 2.
	ForeignSlotBudget int64
	// DisableForeignSlots pins the cross-shard fan-out to the key-probe
	// path regardless of budget (the correctness oracle and A/B
	// baseline for the materialised arrays).
	DisableForeignSlots bool
	// ScalarKernels routes the hot-loop distance and signing kernels
	// through their scalar references instead of the unrolled versions
	// (results are bit-identical either way); this switch is the
	// correctness oracle and A/B baseline for the kernels.
	ScalarKernels bool
	// EarlyAbandon stops distance evaluations that provably cannot beat
	// the best candidate so far.
	EarlyAbandon bool
	// SeededBootstrap replaces the paper's exact first pass with the
	// incremental seeded-index bootstrap.
	SeededBootstrap bool
	// DeferredUpdates makes LSH queries read the assignment snapshot
	// from the start of each pass (the paper updates references
	// immediately).
	DeferredUpdates bool
	// LowestIndexTies breaks distance ties towards the lowest cluster
	// index (numpy-argmin style) instead of keeping the current cluster.
	LowestIndexTies bool
	// DisableIncremental forces full centroid/cost recomputation each
	// pass even when the space supports incremental updates. The batch
	// path is the correctness oracle for the incremental engine
	// (results are bit-identical either way); it implies
	// DisableActiveFilter, which needs the engine's change reports.
	DisableIncremental bool
	// DisableActiveFilter forces every post-bootstrap assignment pass
	// to evaluate all n items. By default accelerated runs skip items
	// whose cluster neighbourhood provably did not change since the
	// previous pass (results are bit-identical either way); this
	// switch is the correctness oracle and A/B baseline.
	DisableActiveFilter bool
	// DisableParallelBootstrap forces the serial bootstrap — the
	// per-item sign+insert loop and single-threaded first assignment —
	// instead of the parallel sign → build → assign pipeline (results
	// are bit-identical either way); this switch is the correctness
	// oracle and A/B baseline.
	DisableParallelBootstrap bool
	// DisableImmediateBatching forces the immediate-update assignment
	// pass to evaluate items one at a time instead of gathering
	// shortlists in blocks cut at move boundaries (results are
	// bit-identical either way); this switch is the correctness oracle
	// and A/B baseline.
	DisableImmediateBatching bool
	// DisableReorder forces the sharded LSH index to build in original
	// item order instead of applying the locality-preserving
	// permutation that makes co-colliding items contiguous (results
	// are bit-identical either way — assignments, stats and CSV always
	// report original item IDs); this switch is the correctness oracle
	// and A/B baseline. Implied by ChaosSpec.
	DisableReorder bool
	// IndexDir, when non-empty, makes the LSH bootstrap durable: a cold
	// run saves the frozen index and the exact first assignment into
	// this directory, and later runs with the same data, parameters and
	// seed warm-start from it — skipping signing, index construction and
	// the first full scan, with bit-identical results. The saved index
	// is pinned to the dataset fingerprint, parameters, seed, shard
	// count and reorder setting; any mismatch is an error, never a
	// silent rebuild. Requires an LSH run with the parallel bootstrap
	// (not SeededBootstrap, not DisableParallelBootstrap).
	IndexDir string
	// DisableMmap loads a persisted index by copying it onto the heap
	// instead of memory-mapping it zero-copy (results are bit-identical
	// either way); this switch is the correctness oracle and A/B
	// baseline for the mapped load. Ignored without IndexDir.
	DisableMmap bool
	// ShardMemoryBudget, when > 0, caps the resident bytes of a
	// memory-mapped persisted index: whole shards page out past the
	// budget and page back in when queried — slower, never wrong.
	// Ignored without IndexDir or with DisableMmap.
	ShardMemoryBudget int64
	// SnapshotEvery, when > 0, checkpoints the run state into IndexDir
	// every SnapshotEvery iterations and resumes interrupted runs from
	// the latest checkpoint. Requires IndexDir.
	SnapshotEvery int
	// ChaosSpec, when non-empty, routes the sharded LSH index's
	// cross-shard fan-out through the fault-tolerant backend layer with
	// the given fault-injection script (see internal/lsh/serve for the
	// grammar, e.g. "seed=1;err=0.05;shard2.dead"). Backend calls then
	// carry deadlines, bounded retries and hedged requests; shards down
	// past the retry budget degrade the run to partial shortlists —
	// recorded in Stats.DegradedItems — instead of failing it. A spec
	// injecting zero faults exercises the whole resilient path
	// bit-identically to the direct fan-out.
	ChaosSpec string
	// RetryBudget is the number of retries after a failed shard-backend
	// call (0 = default, negative = none). Ignored without ChaosSpec.
	RetryBudget int
	// HedgeAfter is the straggler threshold after which a shard-backend
	// call is hedged to a mirror replica (0 = default, negative disables
	// hedging). Ignored without ChaosSpec.
	HedgeAfter time.Duration
	// DisableHedging turns hedged shard-backend requests off, leaving
	// deadlines and retries in place (results are bit-identical either
	// way); this switch is the correctness oracle and A/B baseline for
	// the hedge race. Ignored without ChaosSpec.
	DisableHedging bool
	// OnIteration, when non-nil, receives each iteration's statistics
	// as it completes.
	OnIteration func(Iteration)
	// Context, when non-nil, cancels the run between passes.
	Context context.Context
}

func (c Config) coreOptions() core.Options {
	opts := core.Options{
		MaxIterations:            c.MaxIterations,
		EarlyAbandon:             c.EarlyAbandon,
		Workers:                  c.Workers,
		Shards:                   c.Shards,
		ForeignSlotBudget:        c.ForeignSlotBudget,
		DisableForeignSlots:      c.DisableForeignSlots,
		ScalarKernels:            c.ScalarKernels,
		IndexDir:                 c.IndexDir,
		DisableMmap:              c.DisableMmap,
		ShardMemoryBudget:        c.ShardMemoryBudget,
		SnapshotEvery:            c.SnapshotEvery,
		ChaosSpec:                c.ChaosSpec,
		RetryBudget:              c.RetryBudget,
		HedgeAfter:               c.HedgeAfter,
		DisableHedging:           c.DisableHedging,
		OnIteration:              c.OnIteration,
		Context:                  c.Context,
		DisableIncremental:       c.DisableIncremental,
		DisableActiveFilter:      c.DisableActiveFilter,
		DisableParallelBootstrap: c.DisableParallelBootstrap,
		DisableImmediateBatching: c.DisableImmediateBatching,
		DisableReorder:           c.DisableReorder,
	}
	if c.SeededBootstrap {
		opts.Bootstrap = core.BootstrapSeeded
	}
	if c.DeferredUpdates || c.Workers > 1 {
		opts.Update = core.UpdateDeferred
	}
	if c.LowestIndexTies {
		opts.TieBreak = core.TieBreakLowestIndex
	}
	return opts
}

// Result is the outcome of Cluster.
type Result struct {
	// Assign maps every item to its final cluster.
	Assign []int32
	// Stats records bootstrap and per-iteration measurements; Stats.Name
	// identifies the algorithm configuration.
	Stats Run
	// Model snapshots the trained modes for persistence or prediction.
	Model *Model
}

// Cluster partitions a categorical dataset into cfg.K clusters with
// K-Modes — exact when cfg.LSH is nil, MH-K-Modes otherwise. When the
// dataset carries ground-truth labels the result's Stats.Purity is
// filled.
func Cluster(ds *Dataset, cfg Config) (*Result, error) {
	var space *kmodes.Space
	var err error
	switch cfg.Init {
	case InitRandom:
		space, err = kmodes.NewSpace(ds, kmodes.Config{K: cfg.K, Seed: cfg.Seed})
	case InitHuang:
		var seeds []int32
		if seeds, err = kmodes.InitHuang(ds, cfg.K, cfg.Seed); err == nil {
			space, err = kmodes.NewSpaceFromSeeds(ds, seeds, kmodes.Config{Seed: cfg.Seed})
		}
	case InitCao:
		var seeds []int32
		if seeds, err = kmodes.InitCao(ds, cfg.K); err == nil {
			space, err = kmodes.NewSpaceFromSeeds(ds, seeds, kmodes.Config{Seed: cfg.Seed})
		}
	default:
		return nil, fmt.Errorf("lshcluster: unknown init method %d", cfg.Init)
	}
	if err != nil {
		return nil, err
	}
	opts := cfg.coreOptions()
	name := "K-Modes"
	if cfg.LSH != nil {
		accel, err := core.NewMinHashAccelerator(ds, *cfg.LSH, uint64(cfg.Seed)+0x9e37)
		if err != nil {
			return nil, err
		}
		opts.Accelerator = accel
		name = fmt.Sprintf("MH-K-Modes %v", *cfg.LSH)
	}
	res, err := core.Run(space, opts)
	if err != nil {
		return nil, err
	}
	out := &Result{Assign: res.Assign, Stats: res.Stats, Model: space.Model()}
	out.Stats.Name = name
	if ds.Labeled() {
		p, err := metrics.Purity(res.Assign, ds.Labels())
		if err != nil {
			return nil, err
		}
		out.Stats.Purity = p
	}
	return out, nil
}

// NumericResult is the outcome of ClusterNumeric.
type NumericResult struct {
	// Assign maps every point to its final cluster.
	Assign []int32
	// Stats records bootstrap and per-iteration measurements.
	Stats Run
	// Centroids holds the k final centroids, row-major (k·dim).
	Centroids []float64
}

// ClusterNumeric partitions dense numeric vectors (row-major, length
// n·dim) into cfg.K clusters with K-Means — exact when cfg.LSH is nil,
// SimHash-accelerated otherwise. This is the paper's further-work
// extension to numeric data.
func ClusterNumeric(points []float64, dim int, cfg Config) (*NumericResult, error) {
	space, err := kmeans.NewSpace(points, dim, kmeans.Config{K: cfg.K, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	opts := cfg.coreOptions()
	name := "K-Means"
	if cfg.LSH != nil {
		accel, err := simhash.NewAccelerator(space, *cfg.LSH, cfg.Seed+0x51)
		if err != nil {
			return nil, err
		}
		opts.Accelerator = accel
		name = fmt.Sprintf("SimHash-K-Means %v", *cfg.LSH)
	}
	res, err := core.Run(space, opts)
	if err != nil {
		return nil, err
	}
	centroids := make([]float64, cfg.K*dim)
	for c := 0; c < cfg.K; c++ {
		copy(centroids[c*dim:(c+1)*dim], space.Centroid(c))
	}
	out := &NumericResult{Assign: res.Assign, Stats: res.Stats, Centroids: centroids}
	out.Stats.Name = name
	return out, nil
}

// ReadCSV parses a dataset from CSV (header row of attribute names; a
// trailing "_label" column becomes ground truth).
func ReadCSV(r io.Reader) (*Dataset, error) { return dataset.ReadCSV(r) }

// WriteCSV serialises a dataset as CSV.
func WriteCSV(w io.Writer, ds *Dataset) error { return dataset.WriteCSV(w, ds) }

// NewBuilder creates a dataset builder for the given attributes.
func NewBuilder(attrNames []string) *Builder { return dataset.NewBuilder(attrNames) }

// NewDatasetFromValues assembles a dataset directly from pre-interned
// value IDs (row-major, n·m), e.g. a slice of an existing dataset's
// rows. labels may be nil.
func NewDatasetFromValues(attrNames []string, values []Value, labels []int32) (*Dataset, error) {
	return dataset.New(attrNames, values, labels, nil)
}

// GenerateSynthetic produces a paper-style synthetic categorical
// workload: per-cluster conjunctive rules over a shared domain, with
// ground-truth labels.
func GenerateSynthetic(cfg SyntheticConfig) (*Dataset, error) { return datagen.Generate(cfg) }

// GenerateCorpus produces a Yahoo!-Answers-style topic-labelled question
// corpus for text-clustering experiments.
func GenerateCorpus(cfg CorpusConfig) (*Corpus, error) { return yahoogen.Generate(cfg) }

// Tokenize lower-cases text and splits it into letter/digit runs.
func Tokenize(text string) []string { return textproc.Tokenize(text) }

// NewScorer creates an empty per-topic TF-IDF scorer.
func NewScorer() *Scorer { return textproc.NewScorer() }

// DefaultStopwords returns a fresh copy of the built-in English stopword
// set.
func DefaultStopwords() map[string]bool { return textproc.DefaultStopwords() }

// BuildBinaryDataset converts tokenised documents into binary
// word-presence items over the vocabulary, with absence markers
// invisible to MinHash.
func BuildBinaryDataset(docs []Document, vocab *Vocabulary) (*Dataset, error) {
	return textproc.BuildBinaryDataset(docs, vocab)
}

// WriteRunSummary renders a markdown table summarising runs (iterations,
// bootstrap, mean iteration time, total, moves, purity) — the quickest
// way to compare an exact and an accelerated execution.
func WriteRunSummary(w io.Writer, runs []*Run) error {
	return runstats.WriteSummaryMarkdown(w, runs)
}

// WriteRunCSV emits per-iteration statistics of runs in long CSV format
// for plotting.
func WriteRunCSV(w io.Writer, runs []*Run) error {
	return runstats.WriteCSV(w, runs)
}

// Purity scores an assignment against ground-truth labels (the paper's
// quality metric).
func Purity(assign, labels []int32) (float64, error) { return metrics.Purity(assign, labels) }

// NMI scores an assignment against ground-truth labels with normalised
// mutual information.
func NMI(assign, labels []int32) (float64, error) { return metrics.NMI(assign, labels) }

// SearchParams returns the cheapest banding configuration whose
// cluster-hit probability at similarity s with clusterItems similar
// items reaches targetProb.
func SearchParams(s float64, clusterItems int, targetProb float64, maxBands, maxRows int) (Params, bool) {
	return lsh.SearchParams(s, clusterItems, targetProb, maxBands, maxRows)
}

// TableI returns the paper's Table I probability grid.
func TableI() []TableRow { return lsh.TableI() }

// TableII returns the paper's Table II probability grid.
func TableII() []TableRow { return lsh.TableII() }

// LoadModel reads a K-Modes model written by Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return kmodes.LoadModel(r) }

// GenerateBlobs produces Gaussian-blob numeric data with ground-truth
// labels for the K-Means extension.
func GenerateBlobs(cfg BlobsConfig) (points []float64, labels []int32, err error) {
	return kmeans.GenerateBlobs(cfg)
}

// BlobsConfig parameterises GenerateBlobs.
type BlobsConfig = kmeans.BlobsConfig

// Streaming types: the online clustering extension (paper §VI further
// work) — items are assigned one at a time through the LSH index, with
// modes maintained incrementally.
type (
	// StreamClusterer assigns a stream of categorical items to k
	// evolving modes.
	StreamClusterer = stream.Clusterer
	// StreamConfig parameterises NewStream.
	StreamConfig = stream.Config
	// StreamStats counts shortlist hits, full-scan fallbacks and
	// comparisons over the stream.
	StreamStats = stream.Stats
)

// NewStream creates a streaming clusterer.
func NewStream(cfg StreamConfig) (*StreamClusterer, error) { return stream.New(cfg) }

// StreamFromModel creates a streaming clusterer that continues from a
// trained batch model.
func StreamFromModel(model *Model, params Params, seed uint64) (*StreamClusterer, error) {
	return stream.FromModel(model, params, seed)
}
