package lshcluster

import "testing"

func TestInitMethods(t *testing.T) {
	ds := syntheticDataset(t)
	for _, init := range []InitMethod{InitRandom, InitHuang, InitCao} {
		res, err := Cluster(ds, Config{K: 15, Seed: 3, Init: init, MaxIterations: 5})
		if err != nil {
			t.Fatalf("init %d: %v", init, err)
		}
		if len(res.Assign) != ds.NumItems() {
			t.Fatalf("init %d: bad assignment length", init)
		}
		if res.Stats.Purity <= 0 {
			t.Fatalf("init %d: purity %v", init, res.Stats.Purity)
		}
	}
	if _, err := Cluster(ds, Config{K: 15, Init: InitMethod(99)}); err == nil {
		t.Fatal("expected error for unknown init method")
	}
}

func TestStreamingFacade(t *testing.T) {
	ds := syntheticDataset(t)
	batch, err := Cluster(ds, Config{K: 15, Seed: 3, LSH: &Params{Bands: 10, Rows: 2}})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := StreamFromModel(batch.Model, Params{Bands: 10, Rows: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.NumItems(); i++ {
		if _, err := sc.Add(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if sc.NumItems() != ds.NumItems() {
		t.Fatalf("NumItems = %d", sc.NumItems())
	}
	p, err := Purity(sc.Assignments(), ds.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if p < batch.Stats.Purity-0.2 {
		t.Fatalf("streaming purity %v far below batch %v", p, batch.Stats.Purity)
	}
	// Direct construction path.
	sc2, err := NewStream(StreamConfig{
		Params:       Params{Bands: 4, Rows: 2},
		InitialModes: batch.Model.Modes,
		NumAttrs:     batch.Model.M,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc2.NumClusters() != 15 {
		t.Fatalf("NumClusters = %d", sc2.NumClusters())
	}
}

func TestNewDatasetFromValues(t *testing.T) {
	ds, err := NewDatasetFromValues([]string{"a", "b"}, []Value{1, 2, 3, 4}, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumItems() != 2 || !ds.Labeled() {
		t.Fatalf("dataset = %v", ds)
	}
	if _, err := NewDatasetFromValues([]string{"a", "b"}, []Value{1, 2, 3}, nil); err == nil {
		t.Fatal("expected ragged error")
	}
}
