package lshcluster

import (
	"bytes"
	"strings"
	"testing"
)

func syntheticDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := GenerateSynthetic(SyntheticConfig{
		Items: 300, Clusters: 15, Attrs: 20, Domain: 300,
		MinRuleFrac: 0.6, MaxRuleFrac: 0.9, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestClusterExactAndAccelerated(t *testing.T) {
	ds := syntheticDataset(t)
	exact, err := Cluster(ds, Config{K: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats.Name != "K-Modes" {
		t.Fatalf("name = %q", exact.Stats.Name)
	}
	mh, err := Cluster(ds, Config{K: 15, Seed: 2, LSH: &Params{Bands: 15, Rows: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if mh.Stats.Name != "MH-K-Modes 15b2r" {
		t.Fatalf("name = %q", mh.Stats.Name)
	}
	if len(mh.Assign) != ds.NumItems() {
		t.Fatal("assignment length mismatch")
	}
	// Identical seeds → identical initial centroids → comparable purity.
	if mh.Stats.Purity < exact.Stats.Purity-0.15 {
		t.Fatalf("purity: mh=%v exact=%v", mh.Stats.Purity, exact.Stats.Purity)
	}
	if mh.Model == nil || mh.Model.K != 15 {
		t.Fatal("model missing")
	}
}

func TestClusterOptionsPlumbing(t *testing.T) {
	ds := syntheticDataset(t)
	res, err := Cluster(ds, Config{
		K: 15, Seed: 2, LSH: &Params{Bands: 10, Rows: 2},
		Workers:         3,
		SeededBootstrap: false,
		DeferredUpdates: true,
		LowestIndexTies: true,
		EarlyAbandon:    true,
		MaxIterations:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumIterations() > 4 {
		t.Fatal("iteration cap ignored")
	}
	calls := 0
	_, err = Cluster(ds, Config{K: 5, MaxIterations: 2, OnIteration: func(Iteration) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("OnIteration not invoked")
	}
}

// TestClusterParallelBootstrapEquivalence checks the facade-level A/B:
// the parallel bootstrap pipeline and its serial oracle must produce
// identical clusterings, and the pipeline must report its phase split.
func TestClusterParallelBootstrapEquivalence(t *testing.T) {
	ds := syntheticDataset(t)
	cfg := Config{K: 15, Seed: 2, LSH: &Params{Bands: 10, Rows: 2}, Workers: 4, MaxIterations: 6}
	par, err := Cluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableParallelBootstrap = true
	ser, err := Cluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Assign {
		if par.Assign[i] != ser.Assign[i] {
			t.Fatalf("assign[%d]: parallel %d, serial %d", i, par.Assign[i], ser.Assign[i])
		}
	}
	if par.Stats.BootstrapSign <= 0 || par.Stats.BootstrapBuild <= 0 || par.Stats.BootstrapAssign <= 0 {
		t.Fatalf("parallel bootstrap phases not recorded: sign=%v build=%v assign=%v",
			par.Stats.BootstrapSign, par.Stats.BootstrapBuild, par.Stats.BootstrapAssign)
	}
}

// TestClusterShardEquivalence checks the facade-level shard A/B: an
// item-sharded index must produce the identical clustering to the
// unsharded oracle, for batch K-Modes (with shard stats recorded) and
// for the streaming clusterer.
func TestClusterShardEquivalence(t *testing.T) {
	ds := syntheticDataset(t)
	cfg := Config{K: 15, Seed: 2, LSH: &Params{Bands: 10, Rows: 2}, MaxIterations: 6}
	oracle, err := Cluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 3
	sharded, err := Cluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oracle.Assign {
		if oracle.Assign[i] != sharded.Assign[i] {
			t.Fatalf("assign[%d]: sharded %d, oracle %d", i, sharded.Assign[i], oracle.Assign[i])
		}
	}
	if sharded.Stats.Shards != 3 {
		t.Fatalf("Stats.Shards = %d, want 3", sharded.Stats.Shards)
	}
	if len(sharded.Stats.BootstrapBuildShards) != 3 {
		t.Fatalf("BootstrapBuildShards has %d entries, want 3", len(sharded.Stats.BootstrapBuildShards))
	}

	stream := func(shards int) []int32 {
		sc, err := NewStream(StreamConfig{
			Params:       Params{Bands: 10, Rows: 2},
			Seed:         7,
			InitialModes: append(append([]Value{}, ds.Row(0)...), ds.Row(1)...),
			NumAttrs:     ds.NumAttrs(),
			Shards:       shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ds.NumItems(); i++ {
			if _, err := sc.Add(ds.Row(i), nil); err != nil {
				t.Fatal(err)
			}
		}
		return sc.Assignments()
	}
	one, four := stream(1), stream(4)
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("stream item %d: sharded %d, oracle %d", i, four[i], one[i])
		}
	}
}

// TestClusterDisableIncrementalEquivalence checks the facade-level
// incremental-engine A/B: forcing full recomputation each pass (the
// batch oracle) must produce the identical clustering.
func TestClusterDisableIncrementalEquivalence(t *testing.T) {
	ds := syntheticDataset(t)
	cfg := Config{K: 15, Seed: 2, LSH: &Params{Bands: 10, Rows: 2}, MaxIterations: 6}
	fast, err := Cluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableIncremental = true
	oracle, err := Cluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oracle.Assign {
		if oracle.Assign[i] != fast.Assign[i] {
			t.Fatalf("assign[%d]: incremental %d, batch oracle %d", i, fast.Assign[i], oracle.Assign[i])
		}
	}
}

func TestClusterErrors(t *testing.T) {
	ds := syntheticDataset(t)
	if _, err := Cluster(ds, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Cluster(ds, Config{K: 5, LSH: &Params{Bands: 0, Rows: 1}}); err == nil {
		t.Fatal("expected error for invalid LSH params")
	}
}

func TestClusterNumeric(t *testing.T) {
	pts, labels, err := GenerateBlobs(BlobsConfig{Points: 200, Clusters: 5, Dim: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ClusterNumeric(pts, 3, Config{K: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats.Name != "K-Means" {
		t.Fatalf("name = %q", exact.Stats.Name)
	}
	if len(exact.Centroids) != 15 {
		t.Fatalf("centroids length = %d", len(exact.Centroids))
	}
	sh, err := ClusterNumeric(pts, 3, Config{K: 5, Seed: 9, LSH: &Params{Bands: 6, Rows: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sh.Stats.Name, "SimHash-K-Means") {
		t.Fatalf("name = %q", sh.Stats.Name)
	}
	pe, err := Purity(exact.Assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Purity(sh.Assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ps < pe-0.15 {
		t.Fatalf("purity: simhash=%v exact=%v", ps, pe)
	}
}

func TestCSVRoundTripFacade(t *testing.T) {
	ds := syntheticDataset(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumItems() != ds.NumItems() {
		t.Fatal("round trip lost items")
	}
}

func TestTextPipelineFacade(t *testing.T) {
	corpus, err := GenerateCorpus(CorpusConfig{Topics: 8, QuestionsPerTopic: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scorer := NewScorer()
	byTopic := make([][]string, 8)
	for _, q := range corpus.Questions {
		byTopic[q.Topic] = append(byTopic[q.Topic], q.Tokens...)
	}
	for i, toks := range byTopic {
		scorer.AddTopic(corpus.TopicNames[i], toks)
	}
	vocab, err := scorer.SelectVocabulary(VocabConfig{Threshold: 0.3, Stopwords: DefaultStopwords()})
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]Document, len(corpus.Questions))
	for i, q := range corpus.Questions {
		docs[i] = Document{Tokens: q.Tokens, Label: q.Topic}
	}
	ds, err := BuildBinaryDataset(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds, Config{K: 8, Seed: 1, LSH: &Params{Bands: 1, Rows: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Purity <= 0 || res.Stats.Purity > 1 {
		t.Fatalf("purity = %v", res.Stats.Purity)
	}
}

func TestTokenizeFacade(t *testing.T) {
	got := Tokenize("Does a Zoologist work in a zoo?")
	if strings.Join(got, " ") != "does a zoologist work in a zoo" {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestParamsHelpers(t *testing.T) {
	p, ok := SearchParams(0.3, 10, 0.9, 64, 8)
	if !ok || p.ClusterHitProb(0.3, 10) < 0.9 {
		t.Fatalf("SearchParams = %v, %v", p, ok)
	}
	if len(TableI()) == 0 || len(TableII()) == 0 {
		t.Fatal("probability tables empty")
	}
}

func TestWriteRunHelpers(t *testing.T) {
	ds := syntheticDataset(t)
	res, err := Cluster(ds, Config{K: 5, Seed: 1, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	var md, csv bytes.Buffer
	if err := WriteRunSummary(&md, []*Run{&res.Stats}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "K-Modes") {
		t.Fatalf("summary: %q", md.String())
	}
	if err := WriteRunCSV(&csv, []*Run{&res.Stats}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "run,iteration") {
		t.Fatalf("csv: %q", csv.String())
	}
}

func TestModelRoundTripFacade(t *testing.T) {
	ds := syntheticDataset(t)
	res, err := Cluster(ds, Config{K: 5, Seed: 1, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Predict(ds.Row(0))
	if c < 0 || c >= 5 {
		t.Fatalf("Predict = %d", c)
	}
}
