// Command allocheck is the escape-analysis gate for the repo's
// zero-allocation hot paths. Functions annotated //lshvet:noescape (the
// per-query fan-out in internal/lsh and the distance kernels in
// internal/kernel) are compiled with -gcflags=-m and any "escapes to
// heap" / "moved to heap" diagnostic landing inside an annotated
// function fails the gate: a heap allocation on a per-item path turns
// O(1) queries into garbage-collector load that the paper's speedup
// measurements never budgeted for.
//
// Usage:
//
//	go run ./scripts/allocheck            # gate the repo
//	go run ./scripts/allocheck -dir m ./pkg/...
//
// Exit codes: 0 clean, 1 escape findings, 2 the gate itself failed.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Marker is the annotation that opts a function into the gate.
const Marker = "//lshvet:noescape"

// noescapeFunc is one annotated function's source range.
type noescapeFunc struct {
	name     string
	file     string // absolute path
	from, to int    // line range, inclusive
}

func main() {
	dir := flag.String("dir", ".", "module directory to gate")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(Main(*dir, patterns, os.Stdout, os.Stderr))
}

// Main runs the gate over dir's packages matching patterns and returns
// the process exit code.
func Main(dir string, patterns []string, stdout, stderr io.Writer) int {
	funcs, err := annotatedFuncs(dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "allocheck: %v\n", err)
		return 2
	}
	if len(funcs) == 0 {
		fmt.Fprintf(stdout, "allocheck: no %s functions under %s %s\n", Marker, dir, strings.Join(patterns, " "))
		return 0
	}
	diags, err := escapeDiagnostics(dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "allocheck: %v\n", err)
		return 2
	}
	violations := 0
	for _, d := range diags {
		for _, fn := range funcs {
			if d.file == fn.file && d.line >= fn.from && d.line <= fn.to {
				fmt.Fprintf(stdout, "%s:%d:%d: allocheck: %s inside %s %s\n",
					d.file, d.line, d.col, d.message, Marker, fn.name)
				violations++
				break
			}
		}
	}
	if violations > 0 {
		fmt.Fprintf(stderr, "allocheck: %d escape(s) in annotated hot paths\n", violations)
		return 1
	}
	fmt.Fprintf(stdout, "allocheck: %d annotated function(s) clean\n", len(funcs))
	return 0
}

// annotatedFuncs parses every source file of the matched packages and
// returns the //lshvet:noescape-annotated function ranges.
func annotatedFuncs(dir string, patterns []string) ([]noescapeFunc, error) {
	args := append([]string{"list", "-f",
		"{{$d := .Dir}}{{range .GoFiles}}{{$d}}/{{.}}\n{{end}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	var funcs []noescapeFunc
	fset := token.NewFileSet()
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		file := strings.TrimSpace(sc.Text())
		if file == "" {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if !bytes.Contains(src, []byte(Marker)) {
			continue
		}
		f, err := parser.ParseFile(fset, file, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", file, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, Marker) {
					funcs = append(funcs, noescapeFunc{
						name: fd.Name.Name,
						file: file,
						from: fset.Position(fd.Pos()).Line,
						to:   fset.Position(fd.End()).Line,
					})
					break
				}
			}
		}
	}
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].file != funcs[j].file {
			return funcs[i].file < funcs[j].file
		}
		return funcs[i].from < funcs[j].from
	})
	return funcs, nil
}

// escapeDiag is one compiler escape diagnostic.
type escapeDiag struct {
	file      string // absolute path
	line, col int
	message   string
}

// diagRe matches -m output lines: path.go:line:col: message.
var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeDiagnostics compiles the matched packages with -gcflags=-m and
// returns the heap-escape diagnostics. Diagnostics replay from the
// build cache, so a warm repeated run is cheap.
func escapeDiagnostics(dir string, patterns []string) ([]escapeDiag, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var errb bytes.Buffer
	cmd.Stderr = &errb
	runErr := cmd.Run()
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var diags []escapeDiag
	sc := bufio.NewScanner(&errb)
	for sc.Scan() {
		m := diagRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, file)
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		diags = append(diags, escapeDiag{file: file, line: line, col: col, message: msg})
	}
	if runErr != nil {
		// -m chatter goes to stderr either way; a failed build means the
		// output is not trustworthy.
		if !compiled(errb.Bytes()) {
			return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", runErr, errb.String())
		}
	}
	return diags, nil
}

// compiled reports whether stderr looks like pure -m chatter (every line
// a diagnostic or a package banner) rather than a build failure.
func compiled(stderr []byte) bool {
	sc := bufio.NewScanner(bytes.NewReader(stderr))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || diagRe.MatchString(line) {
			continue
		}
		return false
	}
	return true
}
