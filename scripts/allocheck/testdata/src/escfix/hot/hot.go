// Package hot is allocheck's failing fixture: one annotated function
// that genuinely escapes and one that stays on the stack.
package hot

// LeakyBest claims to be allocation-free but returns a pointer to a
// local, so the compiler moves best to the heap — the violation the
// gate must catch.
//
//lshvet:noescape
func LeakyBest(xs []float64) *float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return &best
}

// CleanSum is a true zero-allocation reduction.
//
//lshvet:noescape
func CleanSum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// UnannotatedLeak escapes too, but carries no annotation, so the gate
// must stay silent about it.
func UnannotatedLeak() *int {
	n := 7
	return &n
}
