package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestGateFailsOnEscapingFixture locks the gate's teeth: an annotated
// function whose local moves to the heap must fail the run, while the
// clean and unannotated functions stay out of the report.
func TestGateFailsOnEscapingFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := Main("testdata/src/escfix", []string{"./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "LeakyBest") || !strings.Contains(s, "moved to heap") {
		t.Fatalf("report missing the seeded escape:\n%s", s)
	}
	if strings.Contains(s, "CleanSum") || strings.Contains(s, "UnannotatedLeak") {
		t.Fatalf("report flags a clean or unannotated function:\n%s", s)
	}
}

// TestGateCleanOnRepo runs the gate over the repository: every
// //lshvet:noescape hot path must stay allocation-free, the same gate
// CI enforces.
func TestGateCleanOnRepo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main("../..", []string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("allocheck not clean over the repo (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}

// TestGateErrorOnMissingDir distinguishes gate failure from findings.
func TestGateErrorOnMissingDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main("testdata/does-not-exist", []string{"./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
