// Command benchjson turns `go test -bench` text output into a
// machine-readable JSON summary. It parses every Benchmark line into a
// name → {iterations, ns/op, reported metrics} map and, when the
// locality A/B pair (BenchmarkLocalityReorder{On,Off}{1,4}) is
// present, derives the headline numbers CI tracks for the
// locality-reordering stage:
//
//   - s4_over_s1_iter_ratio_on / _off: the shard fan-out tax — mean
//     iteration time at S=4 over S=1, with the reordering stage on and
//     off. The reordering exists to push the "on" ratio toward 1.
//   - s1_iter_speedup / s4_iter_speedup: oracle-over-reordered
//     iteration time at each shard count (>1 means reordering won).
//   - reorder_ms_s4, shard_local_frac_on/off: the stage's cost and its
//     effect on where fan-out candidates are served from.
//
// When the persistence trio (BenchmarkPersist{ColdBootstrap,WarmMmap,
// WarmHeap}) is present it also derives the warm-start headlines:
//
//   - warm_start_speedup: cold bootstrap time over warm-mmap bootstrap
//     time — how much faster a run reaches its first iteration from a
//     saved index.
//   - mmap_vs_heap: heap-deserialising load time over zero-copy mmap
//     load time.
//   - index_save_ms / index_load_ms: the persistence layer's own cost.
//
// Usage:
//
//	go test -run XXX -bench BenchmarkLocality . | tee bench-locality.txt
//	go run ./scripts/benchjson -in bench-locality.txt -out BENCH_9.json
//
// With -in/-out omitted it reads stdin and writes stdout. Exit codes:
// 0 success, 1 no Benchmark lines found or I/O failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed Benchmark line.
type benchResult struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// summary is the emitted document.
type summary struct {
	Benchmarks map[string]benchResult `json:"benchmarks"`
	Headline   map[string]float64     `json:"headline,omitempty"`
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	flag.Parse()
	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(inPath, outPath string) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sum, err := parse(r)
	if err != nil {
		return err
	}
	doc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(outPath, doc, 0o644)
}

// parse reads go-test bench output and builds the summary. A Benchmark
// line is "BenchmarkName-P  N  V1 unit1  V2 unit2 ..."; the -P GOMAXPROCS
// suffix is stripped so the JSON keys match the source names.
func parse(r io.Reader) (*summary, error) {
	sum := &summary{Benchmarks: map[string]benchResult{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := benchResult{Iterations: iters, Metrics: map[string]float64{}}
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		sum.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sum.Benchmarks) == 0 {
		return nil, fmt.Errorf("no Benchmark lines in input")
	}
	sum.Headline = headline(sum.Benchmarks)
	return sum, nil
}

// headline derives the locality-stage numbers from the A/B quartet.
// Missing benchmarks or metrics simply leave their entries out, so the
// tool works on any bench file.
func headline(bm map[string]benchResult) map[string]float64 {
	metric := func(name, unit string) (float64, bool) {
		res, ok := bm[name]
		if !ok {
			return 0, false
		}
		v, ok := res.Metrics[unit]
		return v, ok && !math.IsNaN(v)
	}
	h := map[string]float64{}
	ratio := func(key, num, den, unit string) {
		n, okN := metric(num, unit)
		d, okD := metric(den, unit)
		if okN && okD && d > 0 {
			h[key] = n / d
		}
	}
	ratio("s4_over_s1_iter_ratio_on", "BenchmarkLocalityReorderOn4", "BenchmarkLocalityReorderOn1", "iter_ms")
	ratio("s4_over_s1_iter_ratio_off", "BenchmarkLocalityReorderOff4", "BenchmarkLocalityReorderOff1", "iter_ms")
	ratio("s1_iter_speedup", "BenchmarkLocalityReorderOff1", "BenchmarkLocalityReorderOn1", "iter_ms")
	ratio("s4_iter_speedup", "BenchmarkLocalityReorderOff4", "BenchmarkLocalityReorderOn4", "iter_ms")
	if v, ok := metric("BenchmarkLocalityReorderOn4", "reorder_ms"); ok {
		h["reorder_ms_s4"] = v
	}
	if v, ok := metric("BenchmarkLocalityReorderOn4", "shard_local_frac"); ok {
		h["shard_local_frac_on"] = v
	}
	if v, ok := metric("BenchmarkLocalityReorderOff4", "shard_local_frac"); ok {
		h["shard_local_frac_off"] = v
	}
	ratio("warm_start_speedup", "BenchmarkPersistColdBootstrap", "BenchmarkPersistWarmMmap", "bootstrap_ms")
	ratio("mmap_vs_heap", "BenchmarkPersistWarmHeap", "BenchmarkPersistWarmMmap", "load_ms")
	if v, ok := metric("BenchmarkPersistColdBootstrap", "save_ms"); ok {
		h["index_save_ms"] = v
	}
	if v, ok := metric("BenchmarkPersistWarmMmap", "load_ms"); ok {
		h["index_load_ms"] = v
	}
	if len(h) == 0 {
		return nil
	}
	return h
}
