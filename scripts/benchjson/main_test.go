package main

import (
	"math"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: lshcluster
cpu: Some CPU @ 2.00GHz
BenchmarkLocalityReorderOff1-8   	       3	 500000000 ns/op	         0 reorder_ms	        40.0 iter_ms	     12345 B/op	      67 allocs/op
BenchmarkLocalityReorderOn1-8    	       3	 480000000 ns/op	        25.0 reorder_ms	        32.0 iter_ms	     12345 B/op	      67 allocs/op
BenchmarkLocalityReorderOff4-8   	       3	 520000000 ns/op	         0 reorder_ms	        56.0 iter_ms	         0.25 shard_local_frac	     12345 B/op	      67 allocs/op
BenchmarkLocalityReorderOn4-8    	       3	 470000000 ns/op	        26.0 reorder_ms	        35.2 iter_ms	         0.80 shard_local_frac	     12345 B/op	      67 allocs/op
PASS
ok  	lshcluster	12.3s
`

func TestParseBenchLines(t *testing.T) {
	sum, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(sum.Benchmarks))
	}
	on4, ok := sum.Benchmarks["BenchmarkLocalityReorderOn4"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped from benchmark name")
	}
	if on4.Iterations != 3 || on4.NsPerOp != 470000000 {
		t.Fatalf("On4 iterations/ns = %d/%v", on4.Iterations, on4.NsPerOp)
	}
	for unit, want := range map[string]float64{
		"reorder_ms": 26.0, "iter_ms": 35.2, "shard_local_frac": 0.80,
		"B/op": 12345, "allocs/op": 67,
	} {
		if got := on4.Metrics[unit]; got != want {
			t.Errorf("On4 %s = %v, want %v", unit, got, want)
		}
	}
}

func TestHeadlineRatios(t *testing.T) {
	sum, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	approx := func(key string, want float64) {
		t.Helper()
		got, ok := sum.Headline[key]
		if !ok {
			t.Fatalf("headline %s missing", key)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("headline %s = %v, want %v", key, got, want)
		}
	}
	approx("s4_over_s1_iter_ratio_on", 35.2/32.0)
	approx("s4_over_s1_iter_ratio_off", 56.0/40.0)
	approx("s1_iter_speedup", 40.0/32.0)
	approx("s4_iter_speedup", 56.0/35.2)
	approx("reorder_ms_s4", 26.0)
	approx("shard_local_frac_on", 0.80)
	approx("shard_local_frac_off", 0.25)
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("want error on input with no Benchmark lines")
	}
}

func TestHeadlineOmittedForOtherBenches(t *testing.T) {
	sum, err := parse(strings.NewReader("BenchmarkSomethingElse-4 10 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Headline != nil {
		t.Fatalf("headline = %v, want nil for non-locality benches", sum.Headline)
	}
}

const samplePersistBench = `goos: linux
pkg: lshcluster
BenchmarkPersistColdBootstrap-8 	       2	9000000000 ns/op	      9000 bootstrap_ms	      4200 save_ms
BenchmarkPersistWarmMmap-8      	       2	 500000000 ns/op	       300 bootstrap_ms	        50.0 load_ms
BenchmarkPersistWarmHeap-8      	       2	2600000000 ns/op	      2400 bootstrap_ms	      2000 load_ms
PASS
ok  	lshcluster	30.1s
`

func TestHeadlinePersist(t *testing.T) {
	sum, err := parse(strings.NewReader(samplePersistBench))
	if err != nil {
		t.Fatal(err)
	}
	approx := func(key string, want float64) {
		t.Helper()
		got, ok := sum.Headline[key]
		if !ok {
			t.Fatalf("headline %s missing", key)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("headline %s = %v, want %v", key, got, want)
		}
	}
	approx("warm_start_speedup", 9000.0/300.0)
	approx("mmap_vs_heap", 2000.0/50.0)
	approx("index_save_ms", 4200.0)
	approx("index_load_ms", 50.0)
}
